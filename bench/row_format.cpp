// Row-format microbench: typed pages + flat predicate programs vs the
// legacy Value-vector representation.
//
// Both sides evaluate the SAME BoundPredicate program over the SAME data and
// fold a column of the passing rows; the only difference is the row
// representation the program reads: std::vector<Row> (heap-allocated Values,
// string byte-compares) vs HeapTable's fixed-stride typed pages (raw cells,
// interned-id string compares). The acceptance bar for the compact format is
// a >= 1.5x speedup on this scan+filter+project loop.
//
// Flags: --rows=N --iters=N --json[=PATH] --seed=N

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness_util.h"
#include "common/random.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "storage/heap_table.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_rows = 200000;
  size_t iters = 25;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      num_rows = static_cast<size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = static_cast<size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  HarnessFlags flags =
      HarnessFlags::Parse(static_cast<int>(passthrough.size()), passthrough.data());

  Schema schema({{"id", DataType::kInt64},
                 {"grp", DataType::kInt64},
                 {"score", DataType::kDouble},
                 {"flag", DataType::kBool},
                 {"name", DataType::kString}});
  HeapTable table("bench_rows", schema);
  std::vector<Row> legacy;
  legacy.reserve(num_rows);
  table.Reserve(num_rows);

  Rng rng(flags.seed);
  for (size_t i = 0; i < num_rows; ++i) {
    int64_t grp = rng.NextInt64(0, 31);
    double score = rng.NextDouble();
    bool flag = rng.NextBool(0.5);
    std::string name = "name_" + std::to_string(rng.NextInt64(0, 63));
    table.NewRow()
        .I64(static_cast<int64_t>(i))
        .I64(grp)
        .F64(score)
        .Bool(flag)
        .Str(name)
        .Finish();
    legacy.push_back({Value(static_cast<int64_t>(i)), Value(grp), Value(score),
                      Value(flag), Value(std::move(name))});
  }

  // Conjunction mixing int, double, and string equality — the shape the
  // executor's local predicates take.
  ExprPtr expr = And({ColCmp("grp", CompareOp::kEq, Value(int64_t{7})),
                      ColCmp("score", CompareOp::kLt, Value(0.5)),
                      ColCmp("name", CompareOp::kEq, Value("name_3"))});
  auto legacy_pred = BindPredicate(expr, schema);
  auto typed_pred = BindPredicate(expr, schema, &table.pool());
  if (!legacy_pred.ok() || !typed_pred.ok()) {
    std::fprintf(stderr, "bind failed\n");
    return 1;
  }

  // Interleave the two sides and keep each side's best time, so frequency
  // drift and cache warmth cannot favor one representation.
  double best_legacy = 1e30, best_typed = 1e30;
  uint64_t sink_legacy = 0, sink_typed = 0;
  for (size_t it = 0; it < iters; ++it) {
    auto t0 = std::chrono::steady_clock::now();
    uint64_t acc = 0;
    for (const Row& row : legacy) {
      if ((*legacy_pred)->Eval(row)) acc += static_cast<uint64_t>(row[0].AsInt64());
    }
    double s = Seconds(t0);
    if (s < best_legacy) best_legacy = s;
    sink_legacy = acc;

    t0 = std::chrono::steady_clock::now();
    acc = 0;
    for (Rid rid = 0; rid < table.num_rows(); ++rid) {
      RowView row = table.View(rid);
      if ((*typed_pred)->Eval(row)) acc += static_cast<uint64_t>(row.GetInt64(0));
    }
    s = Seconds(t0);
    if (s < best_typed) best_typed = s;
    sink_typed = acc;
  }

  if (sink_legacy != sink_typed) {
    std::fprintf(stderr, "MISMATCH: legacy=%llu typed=%llu\n",
                 static_cast<unsigned long long>(sink_legacy),
                 static_cast<unsigned long long>(sink_typed));
    return 1;
  }

  double speedup = best_legacy / best_typed;
  double ns_legacy = 1e9 * best_legacy / static_cast<double>(num_rows);
  double ns_typed = 1e9 * best_typed / static_cast<double>(num_rows);
  std::printf("== Row format: typed pages vs Value vectors ==\n");
  std::printf("rows=%zu iters=%zu predicate=\"grp=7 AND score<0.5 AND name='name_3'\"\n\n",
              num_rows, iters);
  std::printf("  Value-vector rows : %8.3f ms/scan  (%.1f ns/row)\n",
              best_legacy * 1000.0, ns_legacy);
  std::printf("  typed pages       : %8.3f ms/scan  (%.1f ns/row)\n",
              best_typed * 1000.0, ns_typed);
  std::printf("  speedup           : %8.2fx  (target >= 1.50x)  [%s]\n", speedup,
              speedup >= 1.5 ? "ok" : "below target");

  JsonReport report("row_format", flags);
  report.AddMetric("rows", static_cast<double>(num_rows));
  report.AddMetric("legacy_ms_per_scan", best_legacy * 1000.0);
  report.AddMetric("typed_ms_per_scan", best_typed * 1000.0);
  report.AddMetric("speedup", speedup);
  return 0;
}

// Shared plumbing for the figure/table reproduction harnesses.
//
// Every harness binary regenerates one table or figure of the paper's
// evaluation (Sec 5) and prints the same rows/series the paper reports.
// Common flags:
//   --owners=N        DMV scale (default 100000, the paper's Table 1 scale)
//   --per-template=N  query instances per template (default 60 -> ~300)
//   --reps=N          timed repetitions per query (median reported)
//   --seed=N          workload seed
//   --json[=PATH]     also write machine-readable results (BENCH_<name>.json)

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/controller.h"
#include "catalog/catalog.h"
#include "exec/pipeline_executor.h"
#include "optimize/planner.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace bench {

/// Parsed common command-line flags.
struct HarnessFlags {
  size_t owners = 100000;
  size_t per_template = 60;
  size_t reps = 3;
  uint64_t seed = 20070415;
  /// The paper's Sec 5 baseline optimizer knows table sizes only
  /// (--stats=minimal); --stats=base / --stats=rich select the NDV/min-max
  /// and Sec 5.3 tiers.
  StatsTier stats_tier = StatsTier::kMinimal;
  /// --json enables the JSON results file; --json=PATH overrides its path
  /// (default: BENCH_<harness>.json in the working directory).
  bool json = false;
  std::string json_path;
  /// --dop=N: intra-query degree of parallelism for harnesses that run the
  /// morsel-parallel executor (serial figure reproductions ignore it).
  /// Stamped into the JSON results either way, so baselines taken at
  /// different dops never compare silently.
  size_t dop = 1;
  /// --policy=rank|regret|static: the AdaptationPolicy the harness's
  /// adaptive configurations run under (adaptive/policy.h). Applied by
  /// Workbench::Run/RunPair and stamped into the JSON results, so baselines
  /// taken under different policies never compare silently.
  PolicyKind policy = PolicyKind::kRank;
  /// --index=btree|art: the point-probe index backend (storage/index.h).
  /// Applied by Workbench::Run/RunPair and stamped into the JSON results
  /// as "backend", so baselines taken against different index structures
  /// never compare silently (scripts/bench_delta.py warns on mismatch).
  IndexBackend index_backend = IndexBackend::kBTree;

  static HarnessFlags Parse(int argc, char** argv);
};

/// One query's measurement under one adaptive configuration.
struct QueryRun {
  std::string name;
  double wall_ms = 0;        ///< median wall time over reps
  uint64_t work_units = 0;   ///< deterministic work units
  uint64_t rows_out = 0;
  ExecStats stats;           ///< from the last rep
};

/// Loads the DMV data set and prepares a planner.
class Workbench {
 public:
  explicit Workbench(const HarnessFlags& flags);

  Catalog& catalog() { return catalog_; }
  const Planner& planner() const { return *planner_; }
  const DmvCardinalities& cardinalities() const { return cards_; }
  const HarnessFlags& flags() const { return flags_; }

  /// Plans and runs one query `reps` times; reports the median wall time
  /// and the (deterministic) work units / stats.
  QueryRun Run(const JoinQuery& query, const AdaptiveOptions& options) const;

  /// Runs two configurations of one query with interleaved repetitions
  /// (A, B, A, B, ...) so that cache warm-up and CPU frequency drift hit
  /// both sides equally; reports the per-side medians.
  std::pair<QueryRun, QueryRun> RunPair(const JoinQuery& query,
                                        const AdaptiveOptions& options_a,
                                        const AdaptiveOptions& options_b) const;

  /// The paper's configurations.
  static AdaptiveOptions NoSwitch();
  static AdaptiveOptions SwitchBoth();    ///< c = 10, w = 1000 (Sec 5 defaults)
  static AdaptiveOptions InnerOnly();
  static AdaptiveOptions DrivingOnly();
  /// Strict paper behaviour: both reorder kinds, fixed check interval (no
  /// back-off) and no reorder hysteresis — the configuration Fig 10's
  /// window-size fluctuation was observed under.
  static AdaptiveOptions PaperStrict();

 private:
  HarnessFlags flags_;
  Catalog catalog_;
  std::unique_ptr<Planner> planner_;
  DmvCardinalities cards_;
};

/// Machine-readable results next to the printed tables: when --json[=PATH]
/// was given, every recorded run (wall time, work units, rows, order
/// switches) and aggregate metric lands in one JSON file. Disabled-state
/// calls are no-ops, so harnesses record unconditionally.
class JsonReport {
 public:
  /// `name` identifies the harness (e.g. "fig7_scatter"); the file path is
  /// flags.json_path, or BENCH_<name>.json when --json was given bare.
  JsonReport(std::string name, const HarnessFlags& flags);
  ~JsonReport();  // writes the file if Finish() was not called

  bool enabled() const { return enabled_; }

  /// Records one measured query run under a configuration label.
  void AddRun(const std::string& config, const QueryRun& run);
  /// Records one aggregate scalar (e.g. "concurrent_qps").
  void AddMetric(const std::string& name, double value);
  /// Writes the file once and prints its path; later calls are no-ops.
  void Finish();

 private:
  std::string name_;
  std::string path_;
  bool enabled_ = false;
  bool written_ = false;
  HarnessFlags flags_;
  std::vector<std::string> runs_;
  std::vector<std::string> metrics_;
};

/// Formats a speedup table footer: total elapsed improvement, improvement
/// over changed queries, max speedup (the Sec 5.1 claims).
struct ScatterSummary {
  double total_base_ms = 0;
  double total_adaptive_ms = 0;
  double total_base_changed_ms = 0;
  double total_adaptive_changed_ms = 0;
  double total_base_wu = 0;
  double total_adaptive_wu = 0;
  size_t queries = 0;
  size_t changed = 0;
  size_t improved = 0;
  size_t degraded = 0;  ///< >5% slower
  double max_speedup = 0;
  double max_wu_speedup = 0;

  void Add(const QueryRun& base, const QueryRun& adaptive);
  void Print(const char* base_label, const char* adaptive_label) const;
};

}  // namespace bench
}  // namespace ajr

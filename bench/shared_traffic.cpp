// Shared-traffic harness: closed-loop concurrent identical queries with
// cross-query sharing off vs on (not a paper figure — the engine's
// SharedScanRegistry + SharedProbeCache under the traffic shape they exist
// for: many clients refreshing the same dashboard query at once).
//
// M client threads each submit the same DMV template query `per-client`
// times back to back (closed loop) through one QueryEngine. The OFF pass
// runs every query isolated; the SHARED pass attaches every query to the
// engine's scan registry and striped probe cache. Both passes run the same
// total query count on the same pool, interleaved across `--reps` rounds
// (fresh engine per round: the sharing benefit measured is strictly
// intra-round). Reported:
//
//   * aggregate throughput (QPS) per mode and the shared/off ratio —
//     acceptance target >= 1.5x at M=8 on multi-core hardware;
//   * scan passes per query = shared-scan morsels physically produced /
//     morsels consumed (< 1.0 means queries rode passes others paid for);
//   * shared-cache hit rate and stripe-conflict count;
//   * row-count verification of every query against the serial oracle.
//
// On a single-core machine the ratio is stamped `speedups_not_meaningful`
// (same marker as bench/parallel_scaling; scripts/bench_delta.py then
// skips the gated comparison) — sharing still saves work there, but the
// wall-clock ratio measures the scheduler, not the feature.
//
// Flags: --workers=N --concurrent=M --per-client=N plus the common set
//        (--owners, --reps, --dop, --seed, --json[=PATH], ...).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness_util.h"
#include "common/metrics.h"
#include "runtime/query_engine.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

struct Flags {
  HarnessFlags common;
  size_t workers = 0;     // 0 = hardware concurrency (at least 4)
  size_t concurrent = 8;  // M closed-loop clients
  size_t per_client = 4;  // queries each client submits per round
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      flags.workers = static_cast<size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--concurrent=", 13) == 0) {
      flags.concurrent =
          std::max<size_t>(1, std::strtoull(argv[i] + 13, nullptr, 10));
    } else if (std::strncmp(argv[i], "--per-client=", 13) == 0) {
      flags.per_client =
          std::max<size_t>(1, std::strtoull(argv[i] + 13, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  flags.common =
      HarnessFlags::Parse(static_cast<int>(passthrough.size()), passthrough.data());
  return flags;
}

/// Cumulative outcome of one sharing mode across all rounds.
struct ModeResult {
  double total_s = 0;
  uint64_t mismatches = 0;
  uint64_t attaches = 0;
  uint64_t passes_saved = 0;
  uint64_t morsels_produced = 0;
  uint64_t morsels_consumed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t stripe_conflicts = 0;

  double passes_per_query() const {
    return morsels_consumed > 0 ? static_cast<double>(morsels_produced) /
                                      static_cast<double>(morsels_consumed)
                                : 1.0;
  }
  double hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.workers == 0) {
    flags.workers = std::max<size_t>(4, std::thread::hardware_concurrency());
  }

  std::printf("Loading DMV (%zu owners)...\n", flags.common.owners);
  Workbench bench(flags.common);
  DmvQueryGenerator gen(&bench.catalog(), flags.common.seed);
  auto query_or = gen.Generate(1, 0);
  if (!query_or.ok()) {
    std::fprintf(stderr, "query generation failed: %s\n",
                 query_or.status().ToString().c_str());
    return 1;
  }
  const JoinQuery query = *query_or;
  const AdaptiveOptions adaptive = Workbench::SwitchBoth();

  // Serial oracle: the row count every concurrent run must reproduce.
  uint64_t oracle_rows = 0;
  {
    auto plan = bench.planner().Plan(query);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    PipelineExecutor exec(plan->get(), adaptive);
    auto stats = exec.Execute(nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "serial oracle failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    oracle_rows = stats->rows_out;
  }

  const size_t queries_per_round = flags.concurrent * flags.per_client;
  auto run_round = [&](bool share, ModeResult* mode) -> bool {
    MetricsRegistry metrics;
    QueryEngineOptions eopts;
    eopts.num_workers = flags.workers;
    eopts.planner.stats_tier = flags.common.stats_tier;
    eopts.metrics = &metrics;
    QueryEngine engine(&bench.catalog(), eopts);

    std::vector<uint64_t> client_mismatches(flags.concurrent, 0);
    std::vector<bool> client_errors(flags.concurrent, false);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (size_t c = 0; c < flags.concurrent; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = 0; i < flags.per_client; ++i) {
          QuerySpec spec;
          spec.query = query;
          spec.adaptive = adaptive;
          spec.dop = flags.common.dop;
          spec.share_scan = share;
          spec.share_cache = share;
          auto handle = engine.Submit(std::move(spec));
          if (!handle.ok()) {
            client_errors[c] = true;
            return;
          }
          const QueryResult& result = handle->Wait();
          if (!result.status.ok()) {
            client_errors[c] = true;
            return;
          }
          if (result.stats.rows_out != oracle_rows) ++client_mismatches[c];
        }
      });
    }
    for (std::thread& t : clients) t.join();
    mode->total_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    engine.Shutdown();

    for (size_t c = 0; c < flags.concurrent; ++c) {
      if (client_errors[c]) {
        std::fprintf(stderr, "client %zu failed (share=%d)\n", c, share ? 1 : 0);
        return false;
      }
      mode->mismatches += client_mismatches[c];
    }
    auto counter = [&metrics](const char* name) -> uint64_t {
      const Counter* c = metrics.FindCounter(name);
      return c != nullptr ? c->value() : 0;
    };
    mode->attaches += counter("exec.shared_scan_attaches");
    mode->passes_saved += counter("exec.shared_scan_passes_saved");
    mode->morsels_produced += counter("exec.shared_scan_morsels_produced");
    mode->morsels_consumed += counter("exec.shared_scan_morsels_consumed");
    mode->cache_hits += counter("exec.probe_cache_shared_hits");
    mode->cache_misses += counter("exec.probe_cache_shared_misses");
    mode->stripe_conflicts += counter("exec.probe_cache_shared_stripe_conflicts");
    return true;
  };

  std::printf("Closed loop: %zu clients x %zu queries, %zu engine workers, "
              "dop=%zu, %zu rounds per mode...\n",
              flags.concurrent, flags.per_client, flags.workers,
              flags.common.dop, flags.common.reps);
  ModeResult off, shared;
  for (size_t round = 0; round < flags.common.reps; ++round) {
    if (!run_round(/*share=*/false, &off)) return 1;
    if (!run_round(/*share=*/true, &shared)) return 1;
  }

  const double total_queries =
      static_cast<double>(queries_per_round * flags.common.reps);
  const double off_qps = total_queries / off.total_s;
  const double shared_qps = total_queries / shared.total_s;
  const double ratio = shared_qps / off_qps;
  const bool single_core = std::thread::hardware_concurrency() <= 1;

  std::printf("\n== Shared traffic: %zu concurrent identical queries ==\n",
              flags.concurrent);
  std::printf("%-12s %10s %10s %16s %12s\n", "mode", "QPS", "ratio",
              "passes/query", "hit rate");
  std::printf("%-12s %10.1f %10s %16.2f %12s\n", "share-off", off_qps, "1.00x",
              1.0, "-");
  std::printf("%-12s %10.1f %9.2fx %16.2f %11.1f%%\n", "share-both",
              shared_qps, ratio, shared.passes_per_query(),
              100.0 * shared.hit_rate());
  std::printf("\n  scan attaches     : %llu (%llu full passes saved)\n",
              (unsigned long long)shared.attaches,
              (unsigned long long)shared.passes_saved);
  std::printf("  stripe conflicts  : %llu\n",
              (unsigned long long)shared.stripe_conflicts);
  std::printf("  row counts        : %s\n",
              off.mismatches + shared.mismatches == 0
                  ? "all equal to the serial oracle"
                  : "MISMATCH");
  std::printf("  shared speedup    : %.2fx  (target >= 1.50x)  [%s]\n", ratio,
              single_core          ? "not meaningful on 1 core"
              : ratio >= 1.5       ? "ok"
                                   : "below target");
  if (single_core) {
    std::printf("WARNING: hardware_concurrency=1, speedups not meaningful\n");
  }

  JsonReport report("shared_traffic", flags.common);
  report.AddMetric("workers", static_cast<double>(flags.workers));
  report.AddMetric("concurrent_clients", static_cast<double>(flags.concurrent));
  report.AddMetric("qps_share_off", off_qps);
  report.AddMetric("qps_share_both", shared_qps);
  report.AddMetric("shared_speedup", ratio);
  report.AddMetric("passes_per_query", shared.passes_per_query());
  report.AddMetric("shared_cache_hit_rate", shared.hit_rate());
  report.AddMetric("shared_scan_attaches", static_cast<double>(shared.attaches));
  report.AddMetric("shared_scan_passes_saved",
                   static_cast<double>(shared.passes_saved));
  report.AddMetric("stripe_conflicts",
                   static_cast<double>(shared.stripe_conflicts));
  report.AddMetric("row_mismatches",
                   static_cast<double>(off.mismatches + shared.mismatches));
  report.AddMetric("speedups_not_meaningful", single_core ? 1.0 : 0.0);
  return off.mismatches + shared.mismatches == 0 ? 0 : 1;
}

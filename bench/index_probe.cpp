// Index-probe microbench: per-row B+-tree descent vs hinted (batched)
// descent vs hinted descent + probe memoization — plus a backend race of
// the two Index implementations (B+-tree vs ART) over the same streams.
//
// Every side runs the SAME probe-key sequence against the SAME tree and
// collects the same matched RIDs; the only difference is the probe
// machinery: fresh root-to-leaf Seek per key (the executor's per-row
// baseline), SeekHinted resuming from the previous leaf (the batched
// executor's sorted-descent path), and a ProbeCache in front of the hinted
// probe (the skew-aware memoization path). Work units and match checksums
// are asserted identical across sides — the paths are interchangeable for
// accounting by construction, and this bench proves it on real key streams.
//
// The backend race drives both backends through the abstract Index
// interface (storage/index.h): Probe (fresh descent) and ProbeHinted
// (stateful resume), memoization off. ArtIndex charges canonical B+-tree
// work units, so work totals are asserted bit-identical across backends —
// only the wall clock is allowed to differ. Range probes stay B+-tree-only:
// ART does not expose SupportsRangeScan, and the executor falls back.
//
// Key sequences: sorted (ascending), uniform random, and a Zipf hot-key mix
// (hot items scattered over the key space through a random permutation, so
// locality comes only from repetition, not from clustering). Range probes
// (seek + bounded scan) run sorted and random, per-row vs hinted.
//
// Acceptance: the memoized path must reach >= 1.5x probe throughput over
// the per-row baseline on the Zipf workload, and the ART backend must
// reach >= 1.5x over the B+-tree backend on both the random and Zipf
// point workloads (same interface path, memoization off).
//
// Flags: --entries=N --dup=D --probes=N --span=N --cache=N --zipf-s=S
//        --iters=N --seed=N --json[=PATH]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness_util.h"
#include "common/random.h"
#include "exec/probe_cache.h"
#include "storage/art_index.h"
#include "storage/bplus_tree.h"
#include "storage/cursors.h"
#include "storage/index.h"
#include "storage/key_codec.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from)
      .count();
}

/// One timed side: best wall seconds plus the invariants that must agree
/// across sides (total work units, matched-RID checksum, match count).
struct SideResult {
  double best_s = 1e30;
  uint64_t work_units = 0;
  uint64_t checksum = 0;
  uint64_t matches = 0;

  void Take(double s, const WorkCounter& wc, uint64_t sum, uint64_t n) {
    if (s < best_s) best_s = s;
    work_units = wc.total();
    checksum = sum;
    matches = n;
  }
};

bool CheckAgree(const char* what, const SideResult& a, const SideResult& b) {
  if (a.work_units == b.work_units && a.checksum == b.checksum &&
      a.matches == b.matches) {
    return true;
  }
  std::fprintf(stderr,
               "MISMATCH (%s): wu %llu vs %llu, checksum %llu vs %llu, "
               "matches %llu vs %llu\n",
               what, (unsigned long long)a.work_units,
               (unsigned long long)b.work_units, (unsigned long long)a.checksum,
               (unsigned long long)b.checksum, (unsigned long long)a.matches,
               (unsigned long long)b.matches);
  return false;
}

double Mps(const SideResult& r, size_t probes) {
  return static_cast<double>(probes) / r.best_s / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  size_t entries = 400000;
  size_t dup = 4;
  size_t probes = 200000;
  size_t span = 16;
  size_t cache_entries = 4096;
  double zipf_s = 1.2;
  size_t iters = 7;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entries=", 10) == 0) {
      entries = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--dup=", 6) == 0) {
      dup = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--probes=", 9) == 0) {
      probes = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--span=", 7) == 0) {
      span = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
      cache_entries = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--zipf-s=", 9) == 0) {
      zipf_s = std::strtod(argv[i] + 9, nullptr);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::strtoull(argv[i] + 8, nullptr, 10);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  HarnessFlags flags =
      HarnessFlags::Parse(static_cast<int>(passthrough.size()), passthrough.data());
  if (dup == 0) dup = 1;
  const size_t num_keys = entries / dup > 0 ? entries / dup : 1;

  // Tree: num_keys distinct int64 keys, `dup` RIDs each, bulk-loaded in
  // (key, rid) order — the shape of a catalog join-column index.
  BPlusTree tree(DataType::kInt64);
  {
    std::vector<BPlusTree::EncodedEntry> sorted;
    sorted.reserve(num_keys * dup);
    Rid rid = 0;
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t d = 0; d < dup; ++d) {
        sorted.push_back({OrderEncodeInt64(static_cast<int64_t>(k)), rid++});
      }
    }
    Status st = tree.BulkLoadEncoded(std::move(sorted));
    if (!st.ok()) {
      std::fprintf(stderr, "bulk load: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Probe-key sequences.
  Rng rng(flags.seed);
  std::vector<int64_t> sorted_keys(probes), random_keys(probes), zipf_keys(probes);
  for (size_t i = 0; i < probes; ++i) {
    sorted_keys[i] = static_cast<int64_t>((i * num_keys) / probes);
    random_keys[i] = rng.NextInt64(0, static_cast<int64_t>(num_keys) - 1);
  }
  {
    // Scatter the Zipf ranks over the key space so hot keys are not
    // neighbors: repetition, not clustering, must be what the cache earns
    // its speedup from.
    std::vector<int64_t> perm(num_keys);
    for (size_t k = 0; k < num_keys; ++k) perm[k] = static_cast<int64_t>(k);
    rng.Shuffle(&perm);
    ZipfDistribution zipf(num_keys, zipf_s);
    for (size_t i = 0; i < probes; ++i) zipf_keys[i] = perm[zipf.Sample(&rng)];
  }

  auto point_perrow = [&](const std::vector<int64_t>& keys, SideResult* out) {
    auto t0 = std::chrono::steady_clock::now();
    WorkCounter wc;
    uint64_t sum = 0, n = 0;
    IndexProbe probe(&tree);
    Rid rid;
    for (int64_t k : keys) {
      probe.Seek(IndexKey::Int64(k), &wc);
      while (probe.Next(&wc, &rid)) {
        sum += rid;
        ++n;
      }
    }
    out->Take(Seconds(t0), wc, sum, n);
  };
  auto point_hinted = [&](const std::vector<int64_t>& keys, SideResult* out) {
    auto t0 = std::chrono::steady_clock::now();
    WorkCounter wc;
    uint64_t sum = 0, n = 0;
    HintedIndexProbe probe(&tree);
    Rid rid;
    for (int64_t k : keys) {
      probe.Seek(IndexKey::Int64(k), &wc);
      while (probe.Next(&wc, &rid)) {
        sum += rid;
        ++n;
      }
    }
    out->Take(Seconds(t0), wc, sum, n);
  };
  auto point_memo = [&](const std::vector<int64_t>& keys, SideResult* out) {
    // The cache is rebuilt every iteration: cold-start misses are part of
    // the measured cost, exactly as a fresh executor leg would pay them.
    auto t0 = std::chrono::steady_clock::now();
    WorkCounter wc;
    uint64_t sum = 0, n = 0;
    ProbeCache cache(cache_entries);
    HintedIndexProbe probe(&tree);
    std::vector<Rid> buf;
    Rid rid;
    for (int64_t k : keys) {
      IndexKey key = IndexKey::Int64(k);
      if (const ProbeCache::Result* hit = cache.Lookup(key, 0)) {
        wc.Add(hit->work_units);
        for (Rid r : hit->matches) sum += r;
        n += hit->matches.size();
        continue;
      }
      WorkCounter lwc;
      probe.Seek(key, &lwc);
      buf.clear();
      while (probe.Next(&lwc, &rid)) buf.push_back(rid);
      cache.Insert(key, 0, buf, buf.size(), lwc.total());
      wc.Add(lwc.total());
      for (Rid r : buf) sum += r;
      n += buf.size();
    }
    out->Take(Seconds(t0), wc, sum, n);
  };
  auto range_scan = [&](const std::vector<int64_t>& keys, bool hinted,
                        SideResult* out) {
    auto t0 = std::chrono::steady_clock::now();
    WorkCounter wc;
    uint64_t sum = 0, n = 0;
    BPlusTree::SeekHint hint;
    for (int64_t k : keys) {
      IndexKey lo = IndexKey::Int64(k);
      IndexKey hi = IndexKey::Int64(k + static_cast<int64_t>(span));
      BPlusTree::Iterator it = hinted
                                   ? tree.SeekHinted(lo, /*inclusive=*/true, &hint, &wc)
                                   : tree.Seek(lo, /*inclusive=*/true, &wc);
      while (it.Valid() && tree.CompareProbe(hi, it.key_slot()) >= 0) {
        sum += it.rid();
        ++n;
        it.Next(&wc);
      }
    }
    out->Take(Seconds(t0), wc, sum, n);
  };

  // Backend race: the same streams through the abstract Index interface,
  // fresh descent per key (what a per-row executor leg pays) and hinted
  // stateful descent (what a batched leg pays). Memoization off.
  std::unique_ptr<ArtIndex> art = ArtIndex::BuildFromTree(tree);
  auto iface_point = [&](const Index& idx, const std::vector<int64_t>& keys,
                         SideResult* out) {
    auto t0 = std::chrono::steady_clock::now();
    WorkCounter wc;
    uint64_t sum = 0, n = 0;
    std::vector<Rid> buf;
    for (int64_t k : keys) {
      buf.clear();
      idx.Probe(IndexKey::Int64(k), &wc, &buf);
      for (Rid r : buf) sum += r;
      n += buf.size();
    }
    out->Take(Seconds(t0), wc, sum, n);
  };
  auto iface_hinted = [&](const Index& idx, const std::vector<int64_t>& keys,
                          SideResult* out) {
    auto t0 = std::chrono::steady_clock::now();
    WorkCounter wc;
    uint64_t sum = 0, n = 0;
    std::unique_ptr<Index::ProbeState> state = idx.NewProbeState();
    std::vector<Rid> buf;
    for (int64_t k : keys) {
      buf.clear();
      idx.ProbeHinted(IndexKey::Int64(k), state.get(), &wc, &buf);
      for (Rid r : buf) sum += r;
      n += buf.size();
    }
    out->Take(Seconds(t0), wc, sum, n);
  };

  struct Workload {
    const char* name;
    const std::vector<int64_t>* keys;
  };
  const Workload point_loads[] = {{"point/sorted", &sorted_keys},
                                  {"point/random", &random_keys},
                                  {"point/zipf", &zipf_keys}};
  const Workload range_loads[] = {{"range/sorted", &sorted_keys},
                                  {"range/random", &random_keys}};

  SideResult pr[3], hi[3], me[3], rpr[2], rhi[2];
  SideResult bt_pr[3], bt_hi[3], ar_pr[3], ar_hi[3];
  // Interleave all sides every iteration so frequency drift and cache
  // warmth hit them equally; keep each side's best time.
  for (size_t it = 0; it < iters; ++it) {
    for (size_t w = 0; w < 3; ++w) {
      point_perrow(*point_loads[w].keys, &pr[w]);
      point_hinted(*point_loads[w].keys, &hi[w]);
      point_memo(*point_loads[w].keys, &me[w]);
      iface_point(tree, *point_loads[w].keys, &bt_pr[w]);
      iface_point(*art, *point_loads[w].keys, &ar_pr[w]);
      iface_hinted(tree, *point_loads[w].keys, &bt_hi[w]);
      iface_hinted(*art, *point_loads[w].keys, &ar_hi[w]);
    }
    for (size_t w = 0; w < 2; ++w) {
      range_scan(*range_loads[w].keys, false, &rpr[w]);
      range_scan(*range_loads[w].keys, true, &rhi[w]);
    }
  }

  bool ok = true;
  for (size_t w = 0; w < 3; ++w) {
    ok = CheckAgree(point_loads[w].name, pr[w], hi[w]) && ok;
    ok = CheckAgree(point_loads[w].name, pr[w], me[w]) && ok;
    // Backend parity: the abstract-interface sides must match the legacy
    // cursor path AND each other — RIDs, match counts, and work units are
    // bit-identical across backends by the canonical charge model.
    ok = CheckAgree(point_loads[w].name, pr[w], bt_pr[w]) && ok;
    ok = CheckAgree(point_loads[w].name, bt_pr[w], ar_pr[w]) && ok;
    ok = CheckAgree(point_loads[w].name, bt_pr[w], bt_hi[w]) && ok;
    ok = CheckAgree(point_loads[w].name, bt_pr[w], ar_hi[w]) && ok;
  }
  for (size_t w = 0; w < 2; ++w) {
    ok = CheckAgree(range_loads[w].name, rpr[w], rhi[w]) && ok;
  }
  if (!ok) return 1;

  const double zipf_speedup = Mps(me[2], probes) / Mps(pr[2], probes);
  std::printf("== Index probes: per-row descent vs hinted batch vs memoized ==\n");
  std::printf(
      "entries=%zu keys=%zu dup=%zu probes=%zu span=%zu cache=%zu zipf_s=%.2f\n\n",
      num_keys * dup, num_keys, dup, probes, span, cache_entries, zipf_s);
  std::printf("%-14s %12s %12s %12s %9s %9s\n", "workload", "perrow Mp/s",
              "hinted Mp/s", "memo Mp/s", "hint x", "memo x");
  for (size_t w = 0; w < 3; ++w) {
    std::printf("%-14s %12.2f %12.2f %12.2f %8.2fx %8.2fx\n", point_loads[w].name,
                Mps(pr[w], probes), Mps(hi[w], probes), Mps(me[w], probes),
                Mps(hi[w], probes) / Mps(pr[w], probes),
                Mps(me[w], probes) / Mps(pr[w], probes));
  }
  for (size_t w = 0; w < 2; ++w) {
    std::printf("%-14s %12.2f %12.2f %12s %8.2fx\n", range_loads[w].name,
                Mps(rpr[w], probes), Mps(rhi[w], probes), "-",
                Mps(rhi[w], probes) / Mps(rpr[w], probes));
  }
  std::printf("\n  zipf memo speedup : %.2fx  (target >= 1.50x)  [%s]\n",
              zipf_speedup, zipf_speedup >= 1.5 ? "ok" : "below target");
  std::printf("  work units & match checksums identical across all sides\n");

  const double art_random_speedup = Mps(ar_pr[1], probes) / Mps(bt_pr[1], probes);
  const double art_zipf_speedup = Mps(ar_pr[2], probes) / Mps(bt_pr[2], probes);
  std::printf("\n== Backend race: B+-tree vs ART (Index interface, memo off) ==\n");
  std::printf("%-14s %12s %12s %9s %12s %12s %9s\n", "workload", "btree Mp/s",
              "art Mp/s", "art x", "bt-hint Mp/s", "art-hint Mp/s", "hint x");
  for (size_t w = 0; w < 3; ++w) {
    std::printf("%-14s %12.2f %12.2f %8.2fx %12.2f %12.2f %8.2fx\n",
                point_loads[w].name, Mps(bt_pr[w], probes), Mps(ar_pr[w], probes),
                Mps(ar_pr[w], probes) / Mps(bt_pr[w], probes),
                Mps(bt_hi[w], probes), Mps(ar_hi[w], probes),
                Mps(ar_hi[w], probes) / Mps(bt_hi[w], probes));
  }
  std::printf("\n  art random speedup: %.2fx  (target >= 1.50x)  [%s]\n",
              art_random_speedup,
              art_random_speedup >= 1.5 ? "ok" : "below target");
  std::printf("  art zipf speedup  : %.2fx  (target >= 1.50x)  [%s]\n",
              art_zipf_speedup, art_zipf_speedup >= 1.5 ? "ok" : "below target");
  std::printf("  work units identical across backends (canonical charging)\n");

  // Node16 key-search race: the SIMD lower bound vs the scalar reference,
  // isolated from the rest of the descent. Random Node16-occupancy key sets
  // (5..16 sorted distinct bytes) probed with random bytes; result sums are
  // asserted equal, so the race is also an equality check on real streams.
  double n16_scalar_s = 1e30, n16_simd_s = 1e30;
  {
    const size_t kNodes = 1024;
    std::vector<uint8_t> node_keys(kNodes * 16);
    std::vector<uint8_t> node_count(kNodes);
    for (size_t nidx = 0; nidx < kNodes; ++nidx) {
      uint8_t count = static_cast<uint8_t>(rng.NextInt64(5, 16));
      bool used[256] = {};
      for (uint8_t got = 0; got < count;) {
        uint8_t b = static_cast<uint8_t>(rng.NextInt64(0, 255));
        if (!used[b]) {
          used[b] = true;
          ++got;
        }
      }
      uint8_t* keys = node_keys.data() + nidx * 16;
      uint8_t pos = 0;
      for (int b = 0; b < 256; ++b) {
        if (used[b]) keys[pos++] = static_cast<uint8_t>(b);
      }
      node_count[nidx] = count;
    }
    std::vector<uint32_t> which(probes);
    std::vector<uint8_t> probe_bytes(probes);
    for (size_t i = 0; i < probes; ++i) {
      which[i] = static_cast<uint32_t>(
          rng.NextInt64(0, static_cast<int64_t>(kNodes) - 1));
      probe_bytes[i] = static_cast<uint8_t>(rng.NextInt64(0, 255));
    }
    uint64_t scalar_sum = 0, simd_sum = 0;
    for (size_t it = 0; it < iters; ++it) {
      auto t0 = std::chrono::steady_clock::now();
      uint64_t sum = 0;
      for (size_t i = 0; i < probes; ++i) {
        sum += ArtIndex::Node16LowerBoundScalar(
            node_keys.data() + which[i] * 16, node_count[which[i]],
            probe_bytes[i]);
      }
      double s = Seconds(t0);
      if (s < n16_scalar_s) n16_scalar_s = s;
      scalar_sum = sum;
      t0 = std::chrono::steady_clock::now();
      sum = 0;
      for (size_t i = 0; i < probes; ++i) {
        sum += ArtIndex::Node16LowerBound(node_keys.data() + which[i] * 16,
                                          node_count[which[i]],
                                          probe_bytes[i]);
      }
      s = Seconds(t0);
      if (s < n16_simd_s) n16_simd_s = s;
      simd_sum = sum;
    }
    if (scalar_sum != simd_sum) {
      std::fprintf(stderr,
                   "MISMATCH (node16 lower bound): scalar sum %llu vs simd %llu\n",
                   (unsigned long long)scalar_sum, (unsigned long long)simd_sum);
      return 1;
    }
  }
  const double n16_scalar_mps = static_cast<double>(probes) / n16_scalar_s / 1e6;
  const double n16_simd_mps = static_cast<double>(probes) / n16_simd_s / 1e6;
  std::printf("\n== Node16 key search: scalar vs SIMD lower bound ==\n");
  std::printf("  scalar %10.2f Msearch/s   simd %10.2f Msearch/s   %0.2fx\n",
              n16_scalar_mps, n16_simd_mps, n16_simd_mps / n16_scalar_mps);
  std::printf("  lower-bound sums identical across implementations\n");

  JsonReport report("index_probe", flags);
  const char* names[] = {"point_sorted", "point_random", "point_zipf"};
  for (size_t w = 0; w < 3; ++w) {
    report.AddMetric(std::string(names[w]) + "_perrow_mps", Mps(pr[w], probes));
    report.AddMetric(std::string(names[w]) + "_hinted_mps", Mps(hi[w], probes));
    report.AddMetric(std::string(names[w]) + "_memo_mps", Mps(me[w], probes));
  }
  const char* rnames[] = {"range_sorted", "range_random"};
  for (size_t w = 0; w < 2; ++w) {
    report.AddMetric(std::string(rnames[w]) + "_perrow_mps", Mps(rpr[w], probes));
    report.AddMetric(std::string(rnames[w]) + "_hinted_mps", Mps(rhi[w], probes));
  }
  report.AddMetric("zipf_memo_speedup", zipf_speedup);
  for (size_t w = 0; w < 3; ++w) {
    report.AddMetric(std::string(names[w]) + "_btree_mps", Mps(bt_pr[w], probes));
    report.AddMetric(std::string(names[w]) + "_art_mps", Mps(ar_pr[w], probes));
    report.AddMetric(std::string(names[w]) + "_btree_hinted_mps",
                     Mps(bt_hi[w], probes));
    report.AddMetric(std::string(names[w]) + "_art_hinted_mps",
                     Mps(ar_hi[w], probes));
  }
  report.AddMetric("art_random_speedup", art_random_speedup);
  report.AddMetric("art_zipf_speedup", art_zipf_speedup);
  report.AddMetric("node16_scalar_msearch", n16_scalar_mps);
  report.AddMetric("node16_simd_msearch", n16_simd_mps);
  report.AddMetric("node16_simd_speedup", n16_simd_mps / n16_scalar_mps);
  return 0;
}

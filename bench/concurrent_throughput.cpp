// Concurrent-throughput harness for the query runtime (not a paper figure).
//
// Runs the DMV template mix twice: once serially (the trusted baseline, and
// the per-query row-count oracle) and once through the QueryEngine with N
// workers. Reports QPS and the p50/p95/p99 end-to-end latency, then checks
// that every query produced exactly the serial row count — adaptive
// reordering under concurrency must not change results.
//
//   $ ./build/bench/concurrent_throughput --owners=100000 --workers=8 \
//         --per-template=30
//
// Flags: --owners=N --per-template=N --workers=N --seed=N
//        --stats=minimal|base|rich

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness_util.h"
#include "common/metrics.h"
#include "runtime/query_engine.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

struct Flags {
  HarnessFlags common;
  size_t workers = 0;  // 0 = hardware concurrency (at least 4)
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      flags.workers = static_cast<size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  flags.common =
      HarnessFlags::Parse(static_cast<int>(passthrough.size()), passthrough.data());
  return flags;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.workers == 0) {
    flags.workers = std::max<size_t>(4, std::thread::hardware_concurrency());
  }

  std::printf("Loading DMV (%zu owners)...\n", flags.common.owners);
  Workbench bench(flags.common);
  DmvQueryGenerator gen(&bench.catalog(), flags.common.seed);
  auto queries_or = gen.GenerateMix(flags.common.per_template);
  if (!queries_or.ok()) {
    std::fprintf(stderr, "query generation failed: %s\n",
                 queries_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<JoinQuery>& queries = *queries_or;
  const AdaptiveOptions adaptive = Workbench::SwitchBoth();

  // ---- Serial baseline: one thread, also the row-count oracle. ----
  std::printf("Serial pass: %zu queries...\n", queries.size());
  std::vector<uint64_t> serial_rows(queries.size());
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto plan = bench.planner().Plan(queries[i]);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning %s failed: %s\n", queries[i].name.c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    PipelineExecutor exec(plan->get(), adaptive);
    auto stats = exec.Execute(nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "executing %s failed: %s\n", queries[i].name.c_str(),
                   stats.status().ToString().c_str());
      return 1;
    }
    serial_rows[i] = stats->rows_out;
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - serial_start)
          .count();

  // ---- Concurrent pass through the engine. ----
  std::printf("Concurrent pass: %zu workers...\n", flags.workers);
  MetricsRegistry metrics;
  QueryEngineOptions eopts;
  eopts.num_workers = flags.workers;
  eopts.planner.stats_tier = flags.common.stats_tier;
  eopts.metrics = &metrics;
  QueryEngine engine(&bench.catalog(), eopts);

  std::vector<QueryHandle> handles;
  handles.reserve(queries.size());
  const auto conc_start = std::chrono::steady_clock::now();
  for (const JoinQuery& q : queries) {
    QuerySpec spec;
    spec.query = q;
    spec.adaptive = adaptive;
    auto handle = engine.Submit(std::move(spec));
    if (!handle.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(*handle);
  }
  size_t mismatches = 0;
  std::vector<double> exec_latency_ms;
  exec_latency_ms.reserve(handles.size());
  for (size_t i = 0; i < handles.size(); ++i) {
    const QueryResult& result = handles[i].Wait();
    if (!result.status.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", handles[i].name().c_str(),
                   result.status.ToString().c_str());
      return 1;
    }
    exec_latency_ms.push_back(result.stats.wall_seconds * 1000.0);
    if (result.stats.rows_out != serial_rows[i]) {
      ++mismatches;
      std::fprintf(stderr, "ROW MISMATCH %s: serial=%llu concurrent=%llu\n",
                   handles[i].name().c_str(),
                   static_cast<unsigned long long>(serial_rows[i]),
                   static_cast<unsigned long long>(result.stats.rows_out));
    }
  }
  const double conc_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - conc_start)
          .count();
  engine.Shutdown();

  // ---- Report. ----
  const double n = static_cast<double>(queries.size());
  JsonReport report("concurrent_throughput", flags.common);
  report.AddMetric("workers", static_cast<double>(flags.workers));
  report.AddMetric("serial_qps", n / serial_s);
  report.AddMetric("concurrent_qps", n / conc_s);
  report.AddMetric("speedup", serial_s / conc_s);
  report.AddMetric("exec_latency_p50_ms", Percentile(exec_latency_ms, 0.50));
  report.AddMetric("exec_latency_p95_ms", Percentile(exec_latency_ms, 0.95));
  report.AddMetric("exec_latency_p99_ms", Percentile(exec_latency_ms, 0.99));
  report.AddMetric("row_mismatches", static_cast<double>(mismatches));
  const Histogram* e2e = metrics.FindHistogram("engine.query_latency_us");
  std::printf("\nConcurrent throughput (%zu queries, %zu workers)\n",
              queries.size(), flags.workers);
  std::printf("  serial        : %.2f s  (%.1f QPS)\n", serial_s, n / serial_s);
  std::printf("  concurrent    : %.2f s  (%.1f QPS, %.2fx)\n", conc_s, n / conc_s,
              serial_s / conc_s);
  std::printf("  exec latency  : p50=%.2f ms  p95=%.2f ms  p99=%.2f ms\n",
              Percentile(exec_latency_ms, 0.50), Percentile(exec_latency_ms, 0.95),
              Percentile(exec_latency_ms, 0.99));
  if (e2e != nullptr) {
    std::printf("  e2e latency   : p50=%.2f ms  p95=%.2f ms  p99=%.2f ms"
                "  (incl. queue wait)\n",
                e2e->Quantile(0.50) / 1000.0, e2e->Quantile(0.95) / 1000.0,
                e2e->Quantile(0.99) / 1000.0);
  }
  std::printf("  row counts    : %s\n",
              mismatches == 0 ? "identical to serial execution"
                              : "MISMATCHES (see above)");
  std::printf("\nEngine metrics snapshot:\n%s", metrics.Snapshot().c_str());
  return mismatches == 0 ? 0 : 1;
}

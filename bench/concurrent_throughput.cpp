// Concurrent-throughput harness for the query runtime (not a paper figure).
//
// Runs the DMV template mix twice: once serially (the trusted baseline, and
// the per-query row-count oracle) and once through the QueryEngine with N
// workers. Reports QPS and the p50/p95/p99 end-to-end latency, then checks
// that every query produced exactly the serial row count — adaptive
// reordering under concurrency must not change results.
//
// The concurrent pass runs once per intra-query dop in --dops (default
// "1,2"): dop=1 is inter-query parallelism only, higher dops additionally
// split each query's driving scan into morsels across the same worker
// pool, so the axis shows how intra-query parallelism trades against
// query-level concurrency on a fixed pool.
//
//   $ ./build/bench/concurrent_throughput --owners=100000 --workers=8
//         --per-template=30 --dops=1,2,4
//
// Flags: --owners=N --per-template=N --workers=N --seed=N
//        --stats=minimal|base|rich --dops=CSV --morsel-size=N

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness_util.h"
#include "common/metrics.h"
#include "runtime/query_engine.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

struct Flags {
  HarnessFlags common;
  size_t workers = 0;  // 0 = hardware concurrency (at least 4)
  std::vector<size_t> dops = {1, 2};  // intra-query dop axis
  size_t morsel_size = 0;  // 0 = executor auto-sizing
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      flags.workers = static_cast<size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--dops=", 7) == 0) {
      flags.dops.clear();
      for (const char* p = argv[i] + 7; *p != '\0';) {
        char* end = nullptr;
        size_t d = static_cast<size_t>(std::strtoull(p, &end, 10));
        if (end == p) break;
        flags.dops.push_back(std::max<size_t>(1, d));
        p = *end == ',' ? end + 1 : end;
      }
      if (flags.dops.empty()) flags.dops.push_back(1);
    } else if (std::strncmp(argv[i], "--morsel-size=", 14) == 0) {
      flags.morsel_size =
          static_cast<size_t>(std::strtoull(argv[i] + 14, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  flags.common =
      HarnessFlags::Parse(static_cast<int>(passthrough.size()), passthrough.data());
  return flags;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  if (flags.workers == 0) {
    flags.workers = std::max<size_t>(4, std::thread::hardware_concurrency());
  }

  std::printf("Loading DMV (%zu owners)...\n", flags.common.owners);
  Workbench bench(flags.common);
  DmvQueryGenerator gen(&bench.catalog(), flags.common.seed);
  auto queries_or = gen.GenerateMix(flags.common.per_template);
  if (!queries_or.ok()) {
    std::fprintf(stderr, "query generation failed: %s\n",
                 queries_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<JoinQuery>& queries = *queries_or;
  const AdaptiveOptions adaptive = Workbench::SwitchBoth();

  // ---- Serial baseline: one thread, also the row-count oracle. ----
  std::printf("Serial pass: %zu queries...\n", queries.size());
  std::vector<uint64_t> serial_rows(queries.size());
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto plan = bench.planner().Plan(queries[i]);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning %s failed: %s\n", queries[i].name.c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    PipelineExecutor exec(plan->get(), adaptive);
    auto stats = exec.Execute(nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "executing %s failed: %s\n", queries[i].name.c_str(),
                   stats.status().ToString().c_str());
      return 1;
    }
    serial_rows[i] = stats->rows_out;
  }
  const double serial_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - serial_start)
          .count();

  // ---- Concurrent passes through the engine, one per intra-query dop. ----
  const double n = static_cast<double>(queries.size());
  JsonReport report("concurrent_throughput", flags.common);
  report.AddMetric("workers", static_cast<double>(flags.workers));
  report.AddMetric("serial_qps", n / serial_s);

  size_t total_mismatches = 0;
  std::string last_snapshot;
  for (size_t pass = 0; pass < flags.dops.size(); ++pass) {
    const size_t dop = flags.dops[pass];
    std::printf("Concurrent pass: %zu workers, intra-query dop=%zu...\n",
                flags.workers, dop);
    MetricsRegistry metrics;
    QueryEngineOptions eopts;
    eopts.num_workers = flags.workers;
    eopts.planner.stats_tier = flags.common.stats_tier;
    eopts.metrics = &metrics;
    QueryEngine engine(&bench.catalog(), eopts);

    std::vector<QueryHandle> handles;
    handles.reserve(queries.size());
    const auto conc_start = std::chrono::steady_clock::now();
    for (const JoinQuery& q : queries) {
      QuerySpec spec;
      spec.query = q;
      spec.adaptive = adaptive;
      spec.dop = dop;
      spec.morsel_size = flags.morsel_size;
      auto handle = engine.Submit(std::move(spec));
      if (!handle.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", handle.status().ToString().c_str());
        return 1;
      }
      handles.push_back(*handle);
    }
    size_t mismatches = 0;
    std::vector<double> exec_latency_ms;
    exec_latency_ms.reserve(handles.size());
    for (size_t i = 0; i < handles.size(); ++i) {
      const QueryResult& result = handles[i].Wait();
      if (!result.status.ok()) {
        std::fprintf(stderr, "query %s failed: %s\n", handles[i].name().c_str(),
                     result.status.ToString().c_str());
        return 1;
      }
      exec_latency_ms.push_back(result.stats.wall_seconds * 1000.0);
      if (result.stats.rows_out != serial_rows[i]) {
        ++mismatches;
        std::fprintf(stderr, "ROW MISMATCH dop=%zu %s: serial=%llu concurrent=%llu\n",
                     dop, handles[i].name().c_str(),
                     static_cast<unsigned long long>(serial_rows[i]),
                     static_cast<unsigned long long>(result.stats.rows_out));
      }
    }
    const double conc_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - conc_start)
            .count();
    engine.Shutdown();
    total_mismatches += mismatches;

    // The first dop keeps the historical metric names so old baselines
    // still line up; every pass also records dop-suffixed metrics.
    if (pass == 0) {
      report.AddMetric("concurrent_qps", n / conc_s);
      report.AddMetric("speedup", serial_s / conc_s);
      report.AddMetric("exec_latency_p50_ms", Percentile(exec_latency_ms, 0.50));
      report.AddMetric("exec_latency_p95_ms", Percentile(exec_latency_ms, 0.95));
      report.AddMetric("exec_latency_p99_ms", Percentile(exec_latency_ms, 0.99));
      report.AddMetric("row_mismatches", static_cast<double>(mismatches));
    }
    const std::string suffix = "_dop" + std::to_string(dop);
    report.AddMetric("concurrent_qps" + suffix, n / conc_s);
    report.AddMetric("speedup" + suffix, serial_s / conc_s);
    report.AddMetric("exec_latency_p95_ms" + suffix,
                     Percentile(exec_latency_ms, 0.95));
    const Counter* morsel_counter = metrics.FindCounter("exec.parallel_morsels");
    report.AddMetric("parallel_morsels" + suffix,
                     morsel_counter != nullptr
                         ? static_cast<double>(morsel_counter->value())
                         : 0.0);

    const Histogram* e2e = metrics.FindHistogram("engine.query_latency_us");
    std::printf("\nConcurrent throughput (%zu queries, %zu workers, dop=%zu)\n",
                queries.size(), flags.workers, dop);
    std::printf("  serial        : %.2f s  (%.1f QPS)\n", serial_s, n / serial_s);
    std::printf("  concurrent    : %.2f s  (%.1f QPS, %.2fx)\n", conc_s, n / conc_s,
                serial_s / conc_s);
    std::printf("  exec latency  : p50=%.2f ms  p95=%.2f ms  p99=%.2f ms\n",
                Percentile(exec_latency_ms, 0.50), Percentile(exec_latency_ms, 0.95),
                Percentile(exec_latency_ms, 0.99));
    if (e2e != nullptr) {
      std::printf("  e2e latency   : p50=%.2f ms  p95=%.2f ms  p99=%.2f ms"
                  "  (incl. queue wait)\n",
                  e2e->Quantile(0.50) / 1000.0, e2e->Quantile(0.95) / 1000.0,
                  e2e->Quantile(0.99) / 1000.0);
    }
    std::printf("  row counts    : %s\n",
                mismatches == 0 ? "identical to serial execution"
                                : "MISMATCHES (see above)");
    last_snapshot = metrics.Snapshot();
  }
  std::printf("\nEngine metrics snapshot (last pass):\n%s", last_snapshot.c_str());
  return total_mismatches == 0 ? 0 : 1;
}

// Google-benchmark micro-benchmarks for the storage and execution
// substrates: B+-tree insert/seek/probe, scan cursors, and end-to-end
// pipeline execution with and without adaptation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "exec/pipeline_executor.h"
#include "storage/bplus_tree.h"
#include "storage/cursors.h"
#include "workload/dmv.h"
#include "workload/templates.h"

namespace ajr {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<int64_t> keys(n);
  for (auto& k : keys) k = rng.NextInt64(0, n);
  for (auto _ : state) {
    BPlusTree tree(DataType::kInt64);
    for (int i = 0; i < n; ++i) tree.Insert(Value(keys[i]), static_cast<Rid>(i));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BPlusTreeBulkLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<IndexEntry> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) entries.push_back({Value(int64_t{i}), static_cast<Rid>(i)});
  for (auto _ : state) {
    BPlusTree tree(DataType::kInt64);
    benchmark::DoNotOptimize(tree.BulkLoad(entries).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BPlusTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_BPlusTreeProbe(benchmark::State& state) {
  const int n = 100000;
  BPlusTree tree(DataType::kInt64);
  Rng rng(11);
  for (int i = 0; i < n; ++i) {
    tree.Insert(Value(rng.NextInt64(0, n / 4)), static_cast<Rid>(i));
  }
  Rng probe_rng(13);
  for (auto _ : state) {
    IndexProbe probe(&tree);
    probe.Seek(Value(probe_rng.NextInt64(0, n / 4)), nullptr);
    Rid rid;
    int matches = 0;
    while (probe.Next(nullptr, &rid)) ++matches;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeProbe);

void BM_BPlusTreeRangeCount(benchmark::State& state) {
  const int n = 200000;
  BPlusTree tree(DataType::kInt64);
  for (int i = 0; i < n; ++i) tree.Insert(Value(int64_t{i}), static_cast<Rid>(i));
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CountKeyLess(Value(rng.NextInt64(0, n))));
  }
}
BENCHMARK(BM_BPlusTreeRangeCount);

// Shared DMV fixture for executor benchmarks (built once).
Catalog* DmvCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    DmvConfig config;
    config.num_owners = 20000;
    auto cards = GenerateDmv(c, config);
    if (!cards.ok()) std::abort();
    return c;
  }();
  return catalog;
}

void RunExample1(benchmark::State& state, bool adaptive) {
  Catalog* catalog = DmvCatalog();
  Planner planner(catalog);
  auto plan = planner.Plan(DmvQueryGenerator::Example1());
  if (!plan.ok()) std::abort();
  AdaptiveOptions options;
  options.reorder_inners = adaptive;
  options.reorder_driving = adaptive;
  for (auto _ : state) {
    PipelineExecutor exec(plan->get(), options);
    auto stats = exec.Execute(nullptr);
    benchmark::DoNotOptimize(stats.ok());
  }
}

void BM_ExecuteExample1Static(benchmark::State& state) {
  RunExample1(state, false);
}
BENCHMARK(BM_ExecuteExample1Static);

void BM_ExecuteExample1Adaptive(benchmark::State& state) {
  RunExample1(state, true);
}
BENCHMARK(BM_ExecuteExample1Adaptive);

}  // namespace
}  // namespace ajr

BENCHMARK_MAIN();

// Sec 5.3 (result described but not plotted): with sophisticated statistics
// collected (distributions + frequent values), adaptive reordering still
// helps — the paper reports up to two-fold speedups.
//
// The residual estimation error with rich stats is multi-column correlation
// (make->model, country->city, tier->salary), which no single-column
// statistic captures.

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  flags.stats_tier = StatsTier::kRich;
  if (flags.per_template == 60) flags.per_template = 20;
  std::printf("== Sec 5.3 ablation: adaptive reordering with rich statistics ==\n");
  std::printf("DMV owners=%zu, %zu queries/template, optimizer uses frequent "
              "values + equi-depth histograms\n\n",
              flags.owners, flags.per_template);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateMix(flags.per_template);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  ScatterSummary summary;
  JsonReport report("richstats_ablation", flags);
  for (const JoinQuery& q : *queries) {
    auto [base, adaptive] =
        bench.RunPair(q, Workbench::NoSwitch(), Workbench::SwitchBoth());
    summary.Add(base, adaptive);
    report.AddRun("noswitch_rich", base);
    report.AddRun("switch_both_rich", adaptive);
  }
  summary.Print("NO SWITCH (rich stats)", "SWITCH BOTH (rich stats)");
  std::printf("\nPaper: even with sophisticated statistics collected, reordering "
              "yields up to 2x\nspeedups (correlations remain invisible to "
              "single-column statistics).\n");
  return 0;
}

// Intra-query scaling of the morsel-parallel adaptive executor (not a
// paper figure; the paper's Sec 5 runs are single-threaded).
//
// Runs the six-table DMV mix (the longest pipelines, S1/S2) through
// ParallelPipelineExecutor at each requested dop, with adaptation on.
// Reports per-dop throughput and the speedup over dop=1, and checks two
// contracts along the way:
//
//   * every dop produces exactly the dop=1 row counts (the multiset
//     contract of parallel execution);
//   * dop=1 work units are bit-identical to the plain serial
//     PipelineExecutor (the dop<=1 delegation contract), so this harness
//     doubles as a determinism tripwire for the figure reproductions.
//
// Speedup is only meaningful on a machine with real cores: the report
// includes hardware_concurrency so a dop=8 run on a 1-core container
// reads as what it is. Work units are deterministic either way — the
// merged work of the fleet equals serial work plus the (counted) scan
// the dispenser performs, so "work_units_dopN_vs_serial" near 1.0 shows
// parallelism adds no logical work even when wall time cannot drop.
//
//   $ ./build/bench/parallel_scaling --owners=100000 --per-template=20
//         --dops=1,2,4,8 --json
//
// Flags: --owners=N --per-template=N (six-table queries) --reps=N
//        --seed=N --stats=minimal|base|rich --dops=CSV --morsel-size=N
//        --json[=PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness_util.h"
#include "runtime/parallel_executor.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

struct Flags {
  HarnessFlags common;
  std::vector<size_t> dops = {1, 2, 4, 8};
  size_t morsel_size = 0;  // 0 = executor auto-sizing
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dops=", 7) == 0) {
      flags.dops.clear();
      for (const char* p = argv[i] + 7; *p != '\0';) {
        char* end = nullptr;
        size_t d = static_cast<size_t>(std::strtoull(p, &end, 10));
        if (end == p) break;
        flags.dops.push_back(std::max<size_t>(1, d));
        p = *end == ',' ? end + 1 : end;
      }
      if (flags.dops.empty()) flags.dops.push_back(1);
    } else if (std::strncmp(argv[i], "--morsel-size=", 14) == 0) {
      flags.morsel_size =
          static_cast<size_t>(std::strtoull(argv[i] + 14, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  flags.common =
      HarnessFlags::Parse(static_cast<int>(passthrough.size()), passthrough.data());
  return flags;
}

struct DopResult {
  double wall_s = 0;
  uint64_t work_units = 0;
  uint64_t switches = 0;
  uint64_t morsels = 0;
  size_t mismatches = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  std::printf("Loading DMV (%zu owners)...\n", flags.common.owners);
  Workbench bench(flags.common);
  DmvQueryGenerator gen(&bench.catalog(), flags.common.seed);
  auto queries_or = gen.GenerateSixTableMix(flags.common.per_template);
  if (!queries_or.ok()) {
    std::fprintf(stderr, "query generation failed: %s\n",
                 queries_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<JoinQuery>& queries = *queries_or;
  AdaptiveOptions adaptive = Workbench::SwitchBoth();
  adaptive.policy = flags.common.policy;

  // Plan once per query; plans are shared across dops and reps.
  std::vector<std::unique_ptr<PipelinePlan>> plans;
  for (const JoinQuery& q : queries) {
    auto plan = bench.planner().Plan(q);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning %s failed: %s\n", q.name.c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    plans.push_back(std::move(*plan));
  }

  // Serial reference: row counts for every query, and the work units the
  // dop=1 delegation must reproduce exactly.
  std::printf("Serial reference pass: %zu six-table queries...\n", queries.size());
  std::vector<uint64_t> serial_rows(queries.size());
  uint64_t serial_wu = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    PipelineExecutor exec(plans[i].get(), adaptive);
    auto stats = exec.Execute(nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "executing %s failed: %s\n", queries[i].name.c_str(),
                   stats.status().ToString().c_str());
      return 1;
    }
    serial_rows[i] = stats->rows_out;
    serial_wu += stats->work_units;
  }

  const size_t reps = std::max<size_t>(flags.common.reps, 1);
  JsonReport report("parallel_scaling", flags.common);
  report.AddMetric("hardware_concurrency",
                   static_cast<double>(std::thread::hardware_concurrency()));
  report.AddMetric("queries", static_cast<double>(queries.size()));
  report.AddMetric("morsel_size", static_cast<double>(flags.morsel_size));

  char morsel_desc[32];
  if (flags.morsel_size == 0) {
    std::snprintf(morsel_desc, sizeof(morsel_desc), "auto");
  } else {
    std::snprintf(morsel_desc, sizeof(morsel_desc), "%zu", flags.morsel_size);
  }
  std::printf("\nIntra-query scaling (%zu queries, %zu reps, morsel=%s, "
              "hardware_concurrency=%u)\n",
              queries.size(), reps, morsel_desc,
              std::thread::hardware_concurrency());
  std::printf("  %-6s %10s %10s %9s %12s %9s\n", "dop", "wall_s", "qps",
              "speedup", "work_units", "switches");

  double dop1_wall = 0;
  bool dop1_wu_identical = true;
  int exit_code = 0;
  for (size_t dop : flags.dops) {
    DopResult best;  // median-of-reps by wall time
    std::vector<double> walls;
    for (size_t rep = 0; rep < reps; ++rep) {
      DopResult r;
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < queries.size(); ++i) {
        ParallelExecOptions popts;
        popts.dop = dop;
        popts.morsel_size = flags.morsel_size;
        // Fold after every morsel: a DMV driving scan is only a handful
        // of morsels long, so the default cadence (check_frequency
        // morsels) would starve the coordinator of statistics and the
        // parallel runs would never adapt at all.
        popts.fold_interval = 1;
        ParallelPipelineExecutor exec(plans[i].get(), adaptive, popts);
        auto stats = exec.Execute(nullptr);
        if (!stats.ok()) {
          std::fprintf(stderr, "dop=%zu %s failed: %s\n", dop,
                       queries[i].name.c_str(),
                       stats.status().ToString().c_str());
          return 1;
        }
        r.work_units += stats->work_units;
        r.switches += stats->driving_switches + stats->inner_reorders;
        r.morsels += stats->morsels;
        if (stats->rows_out != serial_rows[i]) {
          ++r.mismatches;
          std::fprintf(stderr, "ROW MISMATCH dop=%zu %s: serial=%llu got=%llu\n",
                       dop, queries[i].name.c_str(),
                       static_cast<unsigned long long>(serial_rows[i]),
                       static_cast<unsigned long long>(stats->rows_out));
        }
      }
      r.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      walls.push_back(r.wall_s);
      if (rep == 0 || r.wall_s < best.wall_s) best = r;
    }
    std::sort(walls.begin(), walls.end());
    best.wall_s = walls[walls.size() / 2];

    if (dop == 1) {
      dop1_wall = best.wall_s;
      dop1_wu_identical = best.work_units == serial_wu;
      if (!dop1_wu_identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: dop=1 work units %llu != serial %llu\n",
                     static_cast<unsigned long long>(best.work_units),
                     static_cast<unsigned long long>(serial_wu));
      }
    }
    if (best.mismatches > 0) exit_code = 1;

    const double qps = static_cast<double>(queries.size()) / best.wall_s;
    const double speedup = dop1_wall > 0 ? dop1_wall / best.wall_s : 1.0;
    std::printf("  %-6zu %10.3f %10.1f %8.2fx %12llu %9llu%s\n", dop,
                best.wall_s, qps, speedup,
                static_cast<unsigned long long>(best.work_units),
                static_cast<unsigned long long>(best.switches),
                best.mismatches > 0 ? "  MISMATCH" : "");

    const std::string suffix = "_dop" + std::to_string(dop);
    report.AddMetric("wall_s" + suffix, best.wall_s);
    report.AddMetric("qps" + suffix, qps);
    report.AddMetric("speedup" + suffix, speedup);
    report.AddMetric("work_units" + suffix, static_cast<double>(best.work_units));
    report.AddMetric("work_units" + suffix + "_vs_serial",
                     serial_wu > 0 ? static_cast<double>(best.work_units) /
                                         static_cast<double>(serial_wu)
                                   : 0.0);
    report.AddMetric("order_switches" + suffix, static_cast<double>(best.switches));
    report.AddMetric("morsels" + suffix, static_cast<double>(best.morsels));
    report.AddMetric("row_mismatches" + suffix, static_cast<double>(best.mismatches));
  }
  report.AddMetric("dop1_work_unit_identity", dop1_wu_identical ? 1.0 : 0.0);
  // Machine-readable twin of the WARNING below: bench_delta.py skips dop>1
  // wall-time comparisons when either side carries this marker.
  report.AddMetric("speedups_not_meaningful",
                   std::thread::hardware_concurrency() <= 1 ? 1.0 : 0.0);
  if (!dop1_wu_identical) exit_code = 1;

  std::printf("\n  dop=1 work units %s the serial executor's (%llu)\n",
              dop1_wu_identical ? "match" : "DO NOT match",
              static_cast<unsigned long long>(serial_wu));
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("WARNING: hardware_concurrency=1, speedups not meaningful\n");
    std::printf("  work-unit parity is the meaningful check on this machine\n");
  }
  return exit_code;
}

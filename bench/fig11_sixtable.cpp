// Figure 11 (Sec 5.5): six-table join reordering scatter — the DMV data
// extended with Location and Time, 100 six-table queries.
//
// Paper: most queries speed up (up to 8x); a few degrade due to incorrect
// index selection for promoted driving legs (same cause as Fig 9's T4).

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  size_t count = flags.per_template == 60 ? 100 : flags.per_template;
  std::printf("== Figure 11: six-table join reordering scatter ==\n");
  std::printf("DMV owners=%zu + Location + Time, %zu queries\n\n", flags.owners, count);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateSixTableMix(count);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %12s %12s %8s %6s\n", "query", "noswitch_ms", "switch_ms",
              "speedup", "moves");
  ScatterSummary summary;
  JsonReport report("fig11_sixtable", flags);
  for (const JoinQuery& q : *queries) {
    auto [base, adaptive] =
        bench.RunPair(q, Workbench::NoSwitch(), Workbench::SwitchBoth());
    summary.Add(base, adaptive);
    report.AddRun("noswitch", base);
    report.AddRun("switch_both", adaptive);
    std::printf("%-10s %12.3f %12.3f %8.2f %6lu\n", q.name.c_str(), base.wall_ms,
                adaptive.wall_ms,
                adaptive.wall_ms > 0 ? base.wall_ms / adaptive.wall_ms : 0.0,
                static_cast<unsigned long>(adaptive.stats.order_switches()));
  }
  summary.Print("NO SWITCH", "SWITCH DRIVING & INNER");
  std::printf("\nPaper's Fig 11: most queries below the diagonal with speedups up "
              "to 8x; a few\ndegradations from incorrect index selection.\n");
  return 0;
}

// Figure 8 (Sec 5.2): reordering only inner legs — normalized elapsed time
// per template (inner-only as a percent of no-reordering).
//
// Paper: 10-20% improvement for the queries whose join order was changed.

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  std::printf("== Figure 8: reordering only inner legs ==\n");
  std::printf("DMV owners=%zu, %zu queries/template\n\n", flags.owners,
              flags.per_template);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);

  std::printf("%-9s %12s %12s %9s %9s %9s %13s\n", "template", "noswitch_ms",
              "inner_ms", "ratio", "wu_ratio", "changed", "ratio_changed");
  JsonReport report("fig8_inner", flags);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    double base_ms = 0, inner_ms = 0;
    double base_wu = 0, inner_wu = 0;
    double base_changed = 0, inner_changed = 0;
    size_t changed = 0;
    for (size_t v = 0; v < flags.per_template; ++v) {
      auto q = gen.Generate(t, v);
      if (!q.ok()) {
        std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
        return 1;
      }
      auto [base, inner] = bench.RunPair(*q, Workbench::NoSwitch(), Workbench::InnerOnly());
      report.AddRun("noswitch", base);
      report.AddRun("inner_only", inner);
      base_ms += base.wall_ms;
      inner_ms += inner.wall_ms;
      base_wu += static_cast<double>(base.work_units);
      inner_wu += static_cast<double>(inner.work_units);
      if (inner.stats.inner_reorders > 0) {
        ++changed;
        base_changed += base.wall_ms;
        inner_changed += inner.wall_ms;
      }
    }
    std::printf("T%-8d %12.2f %12.2f %8.1f%% %8.1f%% %9zu %12.1f%%\n", t, base_ms,
                inner_ms, 100.0 * inner_ms / base_ms, 100.0 * inner_wu / base_wu,
                changed, base_changed > 0 ? 100.0 * inner_changed / base_changed : 100.0);
  }
  std::printf("\nPaper's Fig 8: normalized time below 100%% for every template; "
              "10-20%% improvement\non queries whose inner order changed.\n");
  return 0;
}

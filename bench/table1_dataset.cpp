// Table 1 (Sec 5): tables in the DMV data set and their cardinalities.
//
// Paper values at 100K owners: Owner 100,000; Car 111,676;
// Demographics 100,000; Accidents 279,125.

#include <cstdio>
#include <cstdlib>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  std::printf("== Table 1: tables in the DMV data set ==\n");
  Workbench bench(flags);
  const DmvCardinalities& c = bench.cardinalities();

  const bool at_paper_scale = flags.owners == 100000;
  std::printf("%-14s %12s %12s\n", "Table", "paper", "ours");
  auto row = [&](const char* name, size_t paper100k, size_t ours) {
    if (at_paper_scale) {
      std::printf("%-14s %12zu %12zu %s\n", name, paper100k, ours,
                  paper100k == ours ? "(exact)" : "(MISMATCH)");
    } else {
      std::printf("%-14s %12s %12zu\n", name, "-", ours);
    }
  };
  row("Owner", 100000, c.owner);
  row("Car", 111676, c.car);
  row("Demographics", 100000, c.demographics);
  row("Accidents", 279125, c.accidents);
  std::printf("%-14s %12s %12zu  (six-table extension, Sec 5.5)\n", "Location", "-",
              c.location);
  std::printf("%-14s %12s %12zu  (six-table extension, Sec 5.5)\n", "Time", "-",
              c.time);

  // Data property spot checks that the experiments depend on.
  const TableEntry& car = **bench.catalog().GetTable("car");
  const ColumnStats* make = car.GetColumnStats("make");
  const ColumnStats* model = car.GetColumnStats("model");
  std::printf("\nData properties: car NDV(make)=%zu NDV(model)=%zu "
              "(model -> make functional dependency)\n",
              make ? make->ndv : 0, model ? model->ndv : 0);
  if (at_paper_scale && (c.car != 111676 || c.accidents != 279125)) return 1;
  return 0;
}

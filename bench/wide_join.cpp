// Wide-join repair curve (DESIGN.md §13): how much of the gap between a
// deliberately corrupted initial order and the cardinality-greedy seed the
// adaptive policies win back as join count sweeps 6 -> 20.
//
// Per width n, wide star (W1) and snowflake (W2) instances run under four
// configurations:
//
//   greedy_static   the planner's seed (cardinality-greedy above the
//                   enumeration threshold), no adaptation — the target
//   corrupt_static  AntiGreedyCardinalityOrder seed, no adaptation — the
//                   damage
//   corrupt_rank    corrupted seed + rank policy (switch driving & inner)
//   corrupt_regret  corrupted seed + regret-bounded policy
//
// repair = (corrupt_static - corrupt_<policy>) / (corrupt_static - greedy_static),
// reported on wall time and on deterministic work units (the 1-CPU-stable
// metric). The ROADMAP target: adaptive repair recovers at least half the
// wall-time gap at n >= 10. Every configuration must produce the same
// number of rows — the harness aborts on a mismatch.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/harness_util.h"
#include "optimize/greedy_order.h"

using namespace ajr;
using namespace ajr::bench;

namespace {

struct ConfigResult {
  std::vector<double> wall_ms;
  uint64_t work_units = 0;
  uint64_t rows_out = 0;
  ExecStats stats;
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

ExecStats ExecuteOnce(const PipelinePlan& plan, const AdaptiveOptions& options) {
  PipelineExecutor exec(&plan, options);
  auto stats = exec.Execute(nullptr);
  if (!stats.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  return *stats;
}

}  // namespace

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  const size_t variants = flags.per_template == 60 ? 2 : std::max<size_t>(1, flags.per_template);
  const std::vector<size_t> widths = {6, 8, 10, 12, 16, 20};

  std::printf("== Wide-join repair curve: corrupted seed vs greedy seed, n=6..20 ==\n");
  std::printf("DMV owners=%zu, %zu variant(s) per template per width, reps=%zu\n\n",
              flags.owners, variants, flags.reps);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  JsonReport report("wide_join", flags);

  const char* config_names[4] = {"greedy_static", "corrupt_static",
                                 "corrupt_rank", "corrupt_regret"};
  std::printf("%-12s %14s %14s %14s %14s %12s %12s\n", "query", "greedy_ms",
              "corrupt_ms", "rank_ms", "regret_ms", "rank_rep%", "regret_rep%");

  double min_repair_rank = 1e9, min_repair_regret = 1e9;
  bool curve_ok = true;
  for (size_t n : widths) {
    // Per-width totals drive the repair aggregate (single instances are
    // noisy on shared hardware; the JSON carries both levels).
    double total_ms[4] = {0, 0, 0, 0};
    double total_wu[4] = {0, 0, 0, 0};

    std::vector<JoinQuery> queries;
    for (size_t v = 0; v < variants; ++v) {
      if (n == 6) {
        auto q = gen.GenerateSixTable(1 + static_cast<int>(v % 2), v / 2);
        if (!q.ok()) { std::fprintf(stderr, "%s\n", q.status().ToString().c_str()); return 1; }
        queries.push_back(std::move(*q));
      } else {
        for (int t = 1; t <= kNumWideTemplates; ++t) {
          auto q = gen.GenerateWide(t, n, v);
          if (!q.ok()) { std::fprintf(stderr, "%s\n", q.status().ToString().c_str()); return 1; }
          queries.push_back(std::move(*q));
        }
      }
    }

    for (const JoinQuery& query : queries) {
      auto planned = bench.planner().Plan(query);
      if (!planned.ok()) {
        std::fprintf(stderr, "planning %s failed: %s\n", query.name.c_str(),
                     planned.status().ToString().c_str());
        return 1;
      }
      const PipelinePlan& greedy_plan = **planned;
      PipelinePlan corrupt_plan = greedy_plan;
      corrupt_plan.initial_order =
          AntiGreedyCardinalityOrder(greedy_plan.EstimatedCostInputs());

      AdaptiveOptions opts[4];
      const PipelinePlan* plans[4] = {&greedy_plan, &corrupt_plan,
                                      &corrupt_plan, &corrupt_plan};
      opts[0] = Workbench::NoSwitch();
      opts[0].policy = PolicyKind::kStatic;
      opts[1] = opts[0];
      opts[2] = Workbench::SwitchBoth();
      opts[2].policy = PolicyKind::kRank;
      opts[3] = Workbench::SwitchBoth();
      opts[3].policy = PolicyKind::kRegret;

      ConfigResult results[4];
      for (int c = 0; c < 4; ++c) ExecuteOnce(*plans[c], opts[c]);  // warm-up
      for (size_t rep = 0; rep < std::max<size_t>(flags.reps, 1); ++rep) {
        // Interleaved reps: cache warm-up and frequency drift hit all four
        // configurations equally.
        for (int c = 0; c < 4; ++c) {
          results[c].stats = ExecuteOnce(*plans[c], opts[c]);
          results[c].wall_ms.push_back(results[c].stats.wall_seconds * 1000.0);
          results[c].work_units = results[c].stats.work_units;
          results[c].rows_out = results[c].stats.rows_out;
        }
      }
      for (int c = 1; c < 4; ++c) {
        if (results[c].rows_out != results[0].rows_out) {
          std::fprintf(stderr,
                       "ROWS MISMATCH on %s: %s=%llu vs greedy_static=%llu\n",
                       query.name.c_str(), config_names[c],
                       static_cast<unsigned long long>(results[c].rows_out),
                       static_cast<unsigned long long>(results[0].rows_out));
          return 1;
        }
      }

      double ms[4];
      for (int c = 0; c < 4; ++c) {
        ms[c] = Median(results[c].wall_ms);
        total_ms[c] += ms[c];
        total_wu[c] += static_cast<double>(results[c].work_units);
        QueryRun run;
        run.name = query.name;
        run.wall_ms = ms[c];
        run.work_units = results[c].work_units;
        run.rows_out = results[c].rows_out;
        run.stats = results[c].stats;
        report.AddRun(config_names[c], run);
      }
      auto repair = [&](int c) {
        const double gap = ms[1] - ms[0];
        return gap > 0 ? (ms[1] - ms[c]) / gap : 1.0;
      };
      std::printf("%-12s %14.3f %14.3f %14.3f %14.3f %11.0f%% %11.0f%%\n",
                  query.name.c_str(), ms[0], ms[1], ms[2], ms[3],
                  100.0 * repair(2), 100.0 * repair(3));
    }

    auto agg_repair = [&](const double* totals, int c) {
      const double gap = totals[1] - totals[0];
      return gap > 0 ? (totals[1] - totals[c]) / gap : 1.0;
    };
    const double rank_wall = agg_repair(total_ms, 2);
    const double regret_wall = agg_repair(total_ms, 3);
    const double rank_wu = agg_repair(total_wu, 2);
    const double regret_wu = agg_repair(total_wu, 3);
    std::printf("  n=%-2zu aggregate: wall repair rank=%.0f%% regret=%.0f%%  |  "
                "work-unit repair rank=%.0f%% regret=%.0f%%\n\n",
                n, 100.0 * rank_wall, 100.0 * regret_wall, 100.0 * rank_wu,
                100.0 * regret_wu);
    char metric[64];
    std::snprintf(metric, sizeof metric, "repair_wall_rank_n%zu", n);
    report.AddMetric(metric, rank_wall);
    std::snprintf(metric, sizeof metric, "repair_wall_regret_n%zu", n);
    report.AddMetric(metric, regret_wall);
    std::snprintf(metric, sizeof metric, "repair_wu_rank_n%zu", n);
    report.AddMetric(metric, rank_wu);
    std::snprintf(metric, sizeof metric, "repair_wu_regret_n%zu", n);
    report.AddMetric(metric, regret_wu);
    if (n >= 10) {
      min_repair_rank = std::min(min_repair_rank, rank_wall);
      min_repair_regret = std::min(min_repair_regret, regret_wall);
      if (rank_wall < 0.5 && regret_wall < 0.5) curve_ok = false;
    }
  }

  report.AddMetric("min_repair_wall_rank_n_ge_10", min_repair_rank);
  report.AddMetric("min_repair_wall_regret_n_ge_10", min_repair_regret);
  std::printf("repair target (>=50%% of the wall gap at n>=10 by at least one "
              "policy): %s\n  worst width: rank=%.0f%% regret=%.0f%%\n",
              curve_ok ? "MET" : "NOT MET", 100.0 * min_repair_rank,
              100.0 * min_repair_regret);
  return curve_ok ? 0 : 1;
}

// Figure 9 (Sec 5.3): reordering driving legs — normalized elapsed time per
// template (driving-only as a percent of no-reordering).
//
// Paper: templates 1-3 drop below 50%; template 4 shows a slight
// degradation (suboptimal index access path chosen from optimizer
// estimates when promoting the new driving leg); template 5's driving leg
// is never changed (no bar).

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  std::printf("== Figure 9: reordering driving legs ==\n");
  std::printf("DMV owners=%zu, %zu queries/template\n\n", flags.owners,
              flags.per_template);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);

  std::printf("%-9s %12s %12s %9s %9s %16s\n", "template", "noswitch_ms",
              "driving_ms", "ratio", "wu_ratio", "driving_switches");
  JsonReport report("fig9_driving", flags);
  for (int t = 1; t <= kNumFourTableTemplates; ++t) {
    double base_ms = 0, driving_ms = 0;
    double base_wu = 0, driving_wu = 0;
    uint64_t switches = 0;
    for (size_t v = 0; v < flags.per_template; ++v) {
      auto q = gen.Generate(t, v);
      if (!q.ok()) {
        std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
        return 1;
      }
      auto [base, driving] =
          bench.RunPair(*q, Workbench::NoSwitch(), Workbench::DrivingOnly());
      report.AddRun("noswitch", base);
      report.AddRun("driving_only", driving);
      base_ms += base.wall_ms;
      driving_ms += driving.wall_ms;
      base_wu += static_cast<double>(base.work_units);
      driving_wu += static_cast<double>(driving.work_units);
      switches += driving.stats.driving_switches;
    }
    if (switches == 0) {
      std::printf("T%-8d %12.2f %12s %9s %9s %16s  (driving leg never changed)\n", t,
                  base_ms, "-", "-", "-", "0");
    } else {
      std::printf("T%-8d %12.2f %12.2f %8.1f%% %8.1f%% %16lu\n", t, base_ms,
                  driving_ms, 100.0 * driving_ms / base_ms,
                  100.0 * driving_wu / base_wu, static_cast<unsigned long>(switches));
    }
  }
  std::printf("\nPaper's Fig 9: T1-T3 below ~50%%; T4 slightly above 100%% "
              "(wrong index access path\nfor the promoted leg); T5 has no "
              "driving changes.\n");
  return 0;
}

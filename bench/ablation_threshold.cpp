// Ablation (ours): the driving-switch benefit threshold. The paper relies
// on window smoothing alone (threshold 1.0); this library defaults to a
// mild 1.15x hysteresis. The sweep shows the cost of each extreme: too low
// admits marginal (occasionally harmful) switches, too high forgoes wins.

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  if (flags.per_template == 60) flags.per_template = 12;
  std::printf("== Ablation: driving-switch benefit threshold ==\n");
  std::printf("DMV owners=%zu, %zu queries/template, c=10, w=1000\n\n", flags.owners,
              flags.per_template);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateMix(flags.per_template);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  double base_ms = 0;
  for (const JoinQuery& q : *queries) {
    base_ms += bench.Run(q, Workbench::NoSwitch()).wall_ms;
  }

  const double thresholds[] = {1.0, 1.05, 1.15, 1.3, 1.5, 2.0, 4.0};
  std::printf("%10s %14s %18s\n", "threshold", "time_ratio", "driving_switches");
  JsonReport report("ablation_threshold", flags);
  for (double th : thresholds) {
    AdaptiveOptions options = Workbench::SwitchBoth();
    options.switch_benefit_threshold = th;
    double ms = 0;
    uint64_t switches = 0;
    for (const JoinQuery& q : *queries) {
      QueryRun run = bench.Run(q, options);
      ms += run.wall_ms;
      switches += run.stats.driving_switches;
    }
    std::printf("%10.2f %13.1f%% %18.2f\n", th, 100.0 * ms / base_ms,
                static_cast<double>(switches) / queries->size());
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "threshold_%.2f", th);
    report.AddMetric(std::string(prefix) + "_time_ratio", ms / base_ms);
    report.AddMetric(std::string(prefix) + "_avg_driving_switches",
                     static_cast<double>(switches) / queries->size());
  }
  std::printf("\nExpected: a shallow optimum around 1.0-1.3; very high thresholds "
              "converge to the\nno-switch baseline.\n");
  return 0;
}

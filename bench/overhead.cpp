// Sec 5.4: overhead of monitoring and reorder checking.
//
// Paper: using queries whose join order is never changed, the average
// overhead was 0.68% (inner) and 0.67% (driving) at check frequency c = 10.
//
// Methodology here mirrors the paper: run every query once with adaptation
// enabled; keep those whose order never changes; compare their elapsed time
// against the no-monitoring baseline.

#include <cstdio>
#include <vector>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  if (flags.reps < 5) flags.reps = 5;  // overhead needs tighter timing
  std::printf("== Sec 5.4: monitoring / reorder-check overhead (c=10) ==\n");
  std::printf("DMV owners=%zu, %zu queries/template, reps=%zu\n\n", flags.owners,
              flags.per_template, flags.reps);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateMix(flags.per_template);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  struct Mode {
    const char* label;
    AdaptiveOptions options;
  };
  const Mode modes[] = {
      {"inner-only checks", Workbench::InnerOnly()},
      {"driving-only checks", Workbench::DrivingOnly()},
      {"both", Workbench::SwitchBoth()},
  };
  JsonReport report("overhead", flags);
  const char* metric_names[] = {"inner_only", "driving_only", "both"};
  size_t mode_idx = 0;
  for (const Mode& mode : modes) {
    double base_ms = 0, mon_ms = 0;
    size_t unchanged = 0;
    for (const JoinQuery& q : *queries) {
      auto [base, mon] = bench.RunPair(q, Workbench::NoSwitch(), mode.options);
      if (mon.stats.order_switches() != 0) continue;  // paper: unchanged only
      ++unchanged;
      base_ms += base.wall_ms;
      mon_ms += mon.wall_ms;
    }
    const char* metric = metric_names[mode_idx++];
    if (unchanged == 0) {
      std::printf("%-22s: no unchanged queries at this scale\n", mode.label);
      continue;
    }
    std::printf("%-22s: %zu unchanged queries, overhead %+.2f%%  (%.2f ms -> %.2f ms)\n",
                mode.label, unchanged, 100.0 * (mon_ms - base_ms) / base_ms, base_ms,
                mon_ms);
    report.AddMetric(std::string(metric) + "_overhead_pct",
                     100.0 * (mon_ms - base_ms) / base_ms);
    report.AddMetric(std::string(metric) + "_unchanged_queries",
                     static_cast<double>(unchanged));
  }
  std::printf("\nPaper reports 0.68%% (inner) / 0.67%% (driving) overhead at c=10.\n");
  return 0;
}

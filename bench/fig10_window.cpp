// Figure 10 (Sec 5.4): average number of join-order switches per query vs
// the history window size w.
//
// Paper: dramatic fluctuation (many switches) for small windows without
// performance benefit; stable behaviour once w >= 500.

#include <cstdio>

#include "bench/harness_util.h"

using namespace ajr;
using namespace ajr::bench;

int main(int argc, char** argv) {
  HarnessFlags flags = HarnessFlags::Parse(argc, argv);
  if (flags.per_template == 60) flags.per_template = 12;  // lighter default here
  std::printf("== Figure 10: order switches vs history window size ==\n");
  std::printf("DMV owners=%zu, %zu queries/template, c=10\n\n", flags.owners,
              flags.per_template);
  Workbench bench(flags);
  DmvQueryGenerator gen(&bench.catalog(), flags.seed);
  auto queries = gen.GenerateMix(flags.per_template);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  // Baseline for the runtime ratio column.
  double base_ms = 0;
  for (const JoinQuery& q : *queries) {
    base_ms += bench.Run(q, Workbench::NoSwitch()).wall_ms;
  }

  // Two configurations per window size: "strict" reproduces the paper's
  // run-time exactly (fixed check interval, no reorder hysteresis) — the
  // configuration whose small-window fluctuation Fig 10 reports — while
  // "guarded" is this library's default (hysteresis + check back-off).
  const size_t windows[] = {10, 25, 50, 100, 200, 400, 500, 800, 1000, 1200};
  std::printf("%10s %22s %14s %22s %14s\n", "window w", "strict avg_switches",
              "time_ratio", "guarded avg_switches", "time_ratio");
  JsonReport report("fig10_window", flags);
  for (size_t w : windows) {
    AdaptiveOptions strict = Workbench::PaperStrict();
    strict.history_window = w;
    AdaptiveOptions guarded = Workbench::SwitchBoth();
    guarded.history_window = w;
    uint64_t strict_switches = 0, guarded_switches = 0;
    double strict_ms = 0, guarded_ms = 0;
    for (const JoinQuery& q : *queries) {
      QueryRun srun = bench.Run(q, strict);
      strict_switches += srun.stats.order_switches();
      strict_ms += srun.wall_ms;
      QueryRun grun = bench.Run(q, guarded);
      guarded_switches += grun.stats.order_switches();
      guarded_ms += grun.wall_ms;
    }
    std::printf("%10zu %22.2f %13.1f%% %22.2f %13.1f%%\n", w,
                static_cast<double>(strict_switches) / queries->size(),
                100.0 * strict_ms / base_ms,
                static_cast<double>(guarded_switches) / queries->size(),
                100.0 * guarded_ms / base_ms);
    std::string prefix = "w" + std::to_string(w);
    report.AddMetric(prefix + "_strict_avg_switches",
                     static_cast<double>(strict_switches) / queries->size());
    report.AddMetric(prefix + "_strict_time_ratio", strict_ms / base_ms);
    report.AddMetric(prefix + "_guarded_avg_switches",
                     static_cast<double>(guarded_switches) / queries->size());
    report.AddMetric(prefix + "_guarded_time_ratio", guarded_ms / base_ms);
  }
  std::printf("\nPaper's Fig 10: many switches (fluctuation) at small w, "
              "stable (and beneficial)\nbehaviour once w >= 500. The strict "
              "columns reproduce that run-time; the guarded\ncolumns show "
              "this library's default damping.\n");
  return 0;
}
